// Benchmarks for the exact arithmetic / linear algebra substrate: BigInt
// multiplication and division, Gaussian elimination, span tests and
// orthogonal witnesses (the Main Lemma's inner loop). The *BigEntries
// pairs pit the certified multi-modular driver (the production dispatch)
// against the always-exact reference on hom-count-sized integer entries —
// the workload BENCH_linalg.json tracks.

#include <benchmark/benchmark.h>

#include "linalg/gauss.h"
#include "linalg/modular_solve.h"
#include "tests/test_matrices.h"
#include "util/bigint.h"
#include "util/limb_kernels.h"
#include "util/rng.h"

namespace bagdet {
namespace {

using testmat::RandomBig;

// Reports limb::HeapAllocCount() growth across the timed loop as a
// per-iteration counter — the allocation-freeness metric of the span
// kernel layer (steady-state reconstruct loops should report ~0). The
// counter is thread-local, so multi-threaded sweeps see only the
// calling thread's share.
class ScopedAllocCounter {
 public:
  explicit ScopedAllocCounter(benchmark::State& state)
      : state_(state), before_(limb::HeapAllocCount()) {}
  ~ScopedAllocCounter() {
    const double iters = static_cast<double>(state_.iterations());
    state_.counters["heap_allocs"] =
        iters != 0
            ? static_cast<double>(limb::HeapAllocCount() - before_) / iters
            : 0.0;
  }

 private:
  benchmark::State& state_;
  std::uint64_t before_;
};

void BM_BigIntMultiply(benchmark::State& state) {
  Rng rng(7);
  BigInt a = RandomBig(&rng, static_cast<int>(state.range(0)));
  BigInt b = RandomBig(&rng, static_cast<int>(state.range(0)));
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetLabel(std::to_string(32 * state.range(0)) + " bits");
}
BENCHMARK(BM_BigIntMultiply)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_BigIntDivMod(benchmark::State& state) {
  Rng rng(11);
  BigInt a = RandomBig(&rng, static_cast<int>(state.range(0)));
  BigInt b = RandomBig(&rng, static_cast<int>(state.range(0) / 2 + 1));
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_BigIntPow(benchmark::State& state) {
  BigInt base(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BigInt::Pow(base, static_cast<std::uint64_t>(state.range(0))));
  }
}
BENCHMARK(BM_BigIntPow)->Arg(16)->Arg(256)->Arg(4096);

Mat RandomMatrix(Rng* rng, std::size_t n, std::int64_t lo, std::int64_t hi) {
  return testmat::RandomIntMatrix(rng, n, n, lo, hi);
}

void BM_GaussianElimination(benchmark::State& state) {
  Rng rng(13);
  Mat m = RandomMatrix(&rng, static_cast<std::size_t>(state.range(0)), -9, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceToRref(m));
  }
}
BENCHMARK(BM_GaussianElimination)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_MatrixInverse(benchmark::State& state) {
  Rng rng(17);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Mat m = RandomMatrix(&rng, n, -9, 9);
  while (!IsNonsingular(m)) m = RandomMatrix(&rng, n, -9, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Inverse(m));
  }
}
BENCHMARK(BM_MatrixInverse)->Arg(4)->Arg(8)->Arg(16);

void BM_SpanMembership(benchmark::State& state) {
  Rng rng(19);
  std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<Vec> basis;
  for (std::size_t i = 0; i < k; ++i) {
    Vec v(k);
    for (std::size_t j = 0; j < k; ++j) v[j] = Rational(rng.Range(0, 5));
    basis.push_back(std::move(v));
  }
  Vec target(k);
  for (std::size_t j = 0; j < k; ++j) target[j] = Rational(rng.Range(0, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TestSpanMembership(basis, target));
  }
}
BENCHMARK(BM_SpanMembership)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_OrthogonalWitness(benchmark::State& state) {
  Rng rng(23);
  std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<Vec> basis;
  for (std::size_t i = 0; i + 2 < k; ++i) {  // Leave room outside the span.
    Vec v(k);
    for (std::size_t j = 0; j < k; ++j) v[j] = Rational(rng.Range(0, 5));
    basis.push_back(std::move(v));
  }
  Vec target(k);
  for (std::size_t j = 0; j < k; ++j) target[j] = Rational(rng.Range(1, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(OrthogonalWitness(basis, target));
  }
}
BENCHMARK(BM_OrthogonalWitness)->Arg(4)->Arg(8)->Arg(16);

// --- Modular fast path vs exact reference on large-integer entries ------
//
// Entries are random integers of 32*limbs bits (limbs fixed at 8, i.e.
// 256-bit — the scale of the radix-T hom counts BuildGoodBasis feeds the
// evaluation matrix); the Arg is the matrix dimension.

constexpr int kBigLimbs = 8;

Mat RandomBigMatrix(Rng* rng, std::size_t rows, std::size_t cols) {
  return testmat::RandomBigMatrix(rng, rows, cols, kBigLimbs);
}

/// Rank-2 variant: the last rows are genuine combinations of the first
/// two (the shared generator draws one coefficient per basis row — the
/// local copy this replaces drew per-entry coefficients, which silently
/// restored full rank and made the "rank-2 kernel" label a lie).
Mat RandomBigLowRankMatrix(Rng* rng, std::size_t n) {
  return testmat::RandomBigLowRankMatrix(rng, n, 2, kBigLimbs);
}

void BM_RrefBigEntries(benchmark::State& state) {
  Rng rng(29);
  Mat m = RandomBigMatrix(&rng, static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceToRref(m));
  }
  state.SetLabel("modular dispatch, 256-bit entries");
}
BENCHMARK(BM_RrefBigEntries)->Arg(4)->Arg(6)->Arg(8);

void BM_RrefBigEntriesExact(benchmark::State& state) {
  Rng rng(29);
  Mat m = RandomBigMatrix(&rng, static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceToRrefExact(m));
  }
  state.SetLabel("exact reference, 256-bit entries");
}
BENCHMARK(BM_RrefBigEntriesExact)->Arg(4)->Arg(6)->Arg(8);

void BM_RankBigEntries(benchmark::State& state) {
  Rng rng(31);
  Mat m = RandomBigMatrix(&rng, static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Rank(m));
  }
  state.SetLabel("single-prime probe saturates");
}
BENCHMARK(BM_RankBigEntries)->Arg(4)->Arg(8)->Arg(12);

void BM_RankBigEntriesExact(benchmark::State& state) {
  Rng rng(31);
  Mat m = RandomBigMatrix(&rng, static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceToRrefExact(m).rank);
  }
}
BENCHMARK(BM_RankBigEntriesExact)->Arg(4)->Arg(8)->Arg(12);

void BM_NullspaceBigEntries(benchmark::State& state) {
  Rng rng(37);
  Mat m = RandomBigLowRankMatrix(&rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NullspaceBasis(m));
  }
  state.SetLabel("rank-2 kernel, 256-bit entries");
}
BENCHMARK(BM_NullspaceBigEntries)->Arg(4)->Arg(6)->Arg(8);

void BM_NullspaceBigEntriesExact(benchmark::State& state) {
  Rng rng(37);
  Mat m = RandomBigLowRankMatrix(&rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    // NullspaceBasis body over the exact reference RREF.
    Rref rref = ReduceToRrefExact(m);
    std::vector<bool> is_pivot(m.cols(), false);
    for (std::size_t p : rref.pivots) is_pivot[p] = true;
    std::vector<Vec> basis;
    for (std::size_t free_col = 0; free_col < m.cols(); ++free_col) {
      if (is_pivot[free_col]) continue;
      Vec v(m.cols());
      v[free_col] = Rational(1);
      for (std::size_t i = 0; i < rref.pivots.size(); ++i) {
        v[rref.pivots[i]] = -rref.matrix.At(i, free_col);
      }
      basis.push_back(std::move(v));
    }
    benchmark::DoNotOptimize(basis);
  }
}
BENCHMARK(BM_NullspaceBigEntriesExact)->Arg(4)->Arg(6)->Arg(8);

void BM_SpanMembershipBigEntries(benchmark::State& state) {
  Rng rng(41);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<Vec> basis;
  for (std::size_t i = 0; i + 2 < k; ++i) {
    Vec v(k);
    for (std::size_t j = 0; j < k; ++j) v[j] = Rational(RandomBig(&rng, kBigLimbs));
    basis.push_back(std::move(v));
  }
  Vec target = basis[0] + basis[1];  // Inside the span.
  for (auto _ : state) {
    benchmark::DoNotOptimize(TestSpanMembership(basis, target));
  }
  state.SetLabel("in-span target, 256-bit entries");
}
BENCHMARK(BM_SpanMembershipBigEntries)->Arg(4)->Arg(6)->Arg(8);

void BM_SpanMembershipBigEntriesExact(benchmark::State& state) {
  Rng rng(41);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<Vec> basis;
  for (std::size_t i = 0; i + 2 < k; ++i) {
    Vec v(k);
    for (std::size_t j = 0; j < k; ++j) v[j] = Rational(RandomBig(&rng, kBigLimbs));
    basis.push_back(std::move(v));
  }
  Vec target = basis[0] + basis[1];
  for (auto _ : state) {
    // TestSpanMembership body over the exact reference RREF.
    Mat columns = Mat::FromColumns(basis);
    Mat aug(columns.rows(), columns.cols() + 1);
    for (std::size_t r = 0; r < columns.rows(); ++r) {
      for (std::size_t c = 0; c < columns.cols(); ++c) {
        aug.At(r, c) = columns.At(r, c);
      }
      aug.At(r, columns.cols()) = target[r];
    }
    benchmark::DoNotOptimize(ReduceToRrefExact(std::move(aug)));
  }
}
BENCHMARK(BM_SpanMembershipBigEntriesExact)->Arg(4)->Arg(6)->Arg(8);

void BM_DeterminantBigEntries(benchmark::State& state) {
  Rng rng(43);
  Mat m = RandomBigMatrix(&rng, static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Determinant(m));
  }
  state.SetLabel("fraction-free Bareiss");
}
BENCHMARK(BM_DeterminantBigEntries)->Arg(4)->Arg(6)->Arg(8);

void BM_DeterminantBigEntriesExact(benchmark::State& state) {
  Rng rng(43);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Mat m = RandomBigMatrix(&rng, n, n);
  for (auto _ : state) {
    // The seed's plain elimination over Q.
    Mat a = m;
    Rational det(1);
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t found = n;
      for (std::size_t r = col; r < n; ++r) {
        if (!a.At(r, col).IsZero()) {
          found = r;
          break;
        }
      }
      if (found == n) {
        det = Rational(0);
        break;
      }
      if (found != col) {
        a.SwapRows(found, col);
        det = -det;
      }
      det *= a.At(col, col);
      Rational inv = a.At(col, col).Inverse();
      for (std::size_t r = col + 1; r < n; ++r) {
        Rational factor = a.At(r, col) * inv;
        if (factor.IsZero()) continue;
        for (std::size_t c = col; c < n; ++c) {
          a.At(r, c) -= factor * a.At(col, c);
        }
      }
    }
    benchmark::DoNotOptimize(det);
  }
  state.SetLabel("plain elimination over Q");
}
BENCHMARK(BM_DeterminantBigEntriesExact)->Arg(4)->Arg(6)->Arg(8);

// --- Parallel multi-modular driver ---------------------------------------
//
// A rank-4 matrix with 256-bit entries makes the lifted RREF a dense
// block of genuinely large rationals, so the driver accumulates a few
// dozen primes and — the dominant cost at these dimensions — verifies the
// lift with exact rational arithmetic row by row; eliminations,
// reconstructions, and verification rows all fan out across the thread
// pool. (A random *nonsingular* matrix would be useless here: its RREF is
// the identity and one prime suffices.) Args are {dimension, num_threads}: num_threads=1 is the
// serial fold (the bit-identical reference), larger values cap the worker
// fan-out. On a multi-core runner the thread sweep is the parallel-speedup
// trajectory; the CI bench artifacts record it per commit.

void BM_ModularRrefManyPrimes(benchmark::State& state) {
  Rng rng(53);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Mat m = testmat::RandomBigLowRankMatrix(&rng, n, 4, kBigLimbs);  // 256-bit.
  ModularOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(1));
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TryModularRref(m, options));
  }
  state.SetLabel(std::to_string(state.range(1)) +
                 " thread(s), rank 4, 256-bit entries");
}
BENCHMARK(BM_ModularRrefManyPrimes)
    ->Args({12, 1})->Args({12, 2})->Args({12, 4})
    ->Args({24, 1})->Args({24, 2})->Args({24, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Dedicated multi-modular inverse -------------------------------------
//
// Args are {dimension, limbs}: entries are random 32·limbs-bit integers,
// so the pair sweeps both the crossover dimension and the bit-size axis.
// BM_ModularInverse runs TryModularInverse (CRT below
// ModularOptions::dixon_min_dim, Dixon p-adic lifting above, both behind
// the fresh-prime screen + exact A·A⁻¹ = I certificate);
// BM_ModularInverseExact is the always-exact [A|I] reference the results
// are pinned against. The `dixon` counter records which strategy ran.

Mat RandomNonsingularBigMatrix(Rng* rng, std::size_t n, int limbs) {
  Mat m = testmat::RandomBigMatrix(rng, n, n, limbs);
  while (!IsNonsingular(m)) m = testmat::RandomBigMatrix(rng, n, n, limbs);
  return m;
}

void BM_ModularInverse(benchmark::State& state) {
  Rng rng(59);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Mat m = RandomNonsingularBigMatrix(&rng, n, static_cast<int>(state.range(1)));
  ModularStats stats;
  ModularOptions options;
  options.stats = &stats;
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TryModularInverse(m, options));
  }
  state.counters["dixon"] = stats.used_dixon ? 1 : 0;
  state.counters["primes"] = static_cast<double>(stats.primes_used);
  state.SetLabel(std::to_string(32 * state.range(1)) + "-bit entries");
}
BENCHMARK(BM_ModularInverse)
    ->Args({4, 1})->Args({8, 1})->Args({12, 1})->Args({16, 1})
    ->Args({4, 8})->Args({8, 8})->Args({12, 8})->Args({16, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_ModularInverseDixon(benchmark::State& state) {
  Rng rng(59);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Mat m = RandomNonsingularBigMatrix(&rng, n, static_cast<int>(state.range(1)));
  ModularOptions options;
  options.dixon_min_dim = 1;  // Force the p-adic path for the comparison.
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TryModularInverse(m, options));
  }
  state.SetLabel(std::to_string(32 * state.range(1)) +
                 "-bit entries, forced Dixon");
}
BENCHMARK(BM_ModularInverseDixon)
    ->Args({12, 1})->Args({16, 1})
    ->Args({12, 8})->Args({16, 8})
    ->Unit(benchmark::kMicrosecond);

// Reconstruction-bound regime: modest dimension, very wide entries (the
// second arg is limbs, so 16/24 limbs = 512/768-bit), where CRT folds,
// Wang rational reconstruction, and the gcd ladder dominate over the
// per-prime eliminations. This is the workload the span-kernel tail
// (arena scratch + CommitSpan capacity reuse + fused MulAdd/MulSub) is
// for; `heap_allocs` exposes the steady-state allocation count per call.
// The BM_ModularInverse prefix keeps it inside the perf gate's pinned
// set and the CI job's benchmark_filter automatically.
void BM_ModularInverseReconstruct(benchmark::State& state) {
  Rng rng(67);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Mat m = RandomNonsingularBigMatrix(&rng, n, static_cast<int>(state.range(1)));
  ModularStats stats;
  ModularOptions options;
  options.stats = &stats;
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TryModularInverse(m, options));
  }
  state.counters["primes"] = static_cast<double>(stats.primes_used);
  state.SetLabel(std::to_string(32 * state.range(1)) +
                 "-bit entries, reconstruction-bound");
}
BENCHMARK(BM_ModularInverseReconstruct)
    ->Args({8, 16})->Args({8, 24})
    ->Unit(benchmark::kMicrosecond);

void BM_ModularInverseExact(benchmark::State& state) {
  Rng rng(59);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Mat m = RandomNonsingularBigMatrix(&rng, n, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(InverseExact(m));
  }
  state.SetLabel(std::to_string(32 * state.range(1)) + "-bit entries");
}
BENCHMARK(BM_ModularInverseExact)
    ->Args({4, 1})->Args({8, 1})->Args({12, 1})->Args({16, 1})
    ->Args({4, 8})->Args({8, 8})->Args({12, 8})->Args({16, 8})
    ->Unit(benchmark::kMicrosecond);

// --- Verification pre-check before/after ---------------------------------
//
// The huge-low-rank regime where the exact verification certificate
// dominates TryModularRref, with the entries additionally scaled by the
// product of the driver's first two primes: those primes see a zero
// matrix, the early rank-0 consensus reconstructs trivially, and the
// driver must *reject* spurious candidates before the true signature
// appears — the workload the residual pre-check exists for. Arg is the
// number of fresh screening primes: 0 reproduces the pre-PR behavior
// (every reconstructed candidate runs the exact rational pass), 2 is the
// production default (bad candidates die in word-size arithmetic; the
// exact pass runs exactly once, for the accepted result). The exported
// per-call counters make the before/after visible per commit:
// exact_verifies vs precheck_rejects out of lift_attempts.

void BM_VerifyRref(benchmark::State& state) {
  Rng rng(61);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Mat m = testmat::RandomBigLowRankMatrix(&rng, n, 4, kBigLimbs);  // 256-bit.
  const std::vector<std::uint64_t>& primes = ModularPrimes(2);
  const Rational poison(BigInt(static_cast<std::int64_t>(primes[0])) *
                        BigInt(static_cast<std::int64_t>(primes[1])));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m.At(r, c) *= poison;
  }
  ModularStats stats;
  ModularOptions options;
  options.verify_precheck_primes = static_cast<std::size_t>(state.range(1));
  options.stats = &stats;
  std::size_t iterations = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TryModularRref(m, options));
    ++iterations;
  }
  const double scale = iterations != 0 ? 1.0 / iterations : 0.0;
  state.counters["lift_attempts"] = stats.lift_attempts * scale;
  state.counters["precheck_rejects"] = stats.precheck_rejects * scale;
  state.counters["exact_verifies"] = stats.exact_verifies * scale;
  state.SetLabel(state.range(1) == 0 ? "pre-check off (before)"
                                     : "pre-check on (after)");
}
BENCHMARK(BM_VerifyRref)
    ->Args({16, 0})->Args({16, 2})
    ->Args({24, 0})->Args({24, 2})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_IsNonsingularBigEntries(benchmark::State& state) {
  Rng rng(47);
  Mat m = RandomBigMatrix(&rng, static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsNonsingular(m));
  }
  state.SetLabel("single-prime det probe");
}
BENCHMARK(BM_IsNonsingularBigEntries)->Arg(4)->Arg(8)->Arg(12);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
