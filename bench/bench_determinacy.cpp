// End-to-end benchmarks for the Theorem-3 decision procedure, sweeping the
// quantities the paper's complexity remarks single out: the number of
// views |V0|, the number of basis queries k = |W| (everything after W is
// polynomial), and decision-only vs. counterexample synthesis.
//
// Machine-readable output: run with --benchmark_format=json. The checked-in
// BENCH_determinacy.json pairs these numbers (plus bench_counterexample's)
// against the seed pipeline, before the canonical-interning + hom-cache
// layer.

#include <benchmark/benchmark.h>

#include "core/determinacy.h"
#include "hom/hom_cache.h"
#include "query/cq.h"
#include "structs/structure.h"
#include "util/limb_kernels.h"
#include "util/rng.h"

namespace bagdet {
namespace {

/// Exports one decide's hom-cache behavior (each DecideBagDeterminacy call
/// builds its own analysis + cache, so the stats describe exactly one
/// end-to-end run): traffic, dedup ratio, and resident footprint. Only the
/// counterexample-synthesis path counts homs — the determined/decision-only
/// paths resolve via span membership — so only that benchmark reports.
void ReportCacheStats(benchmark::State& state,
                      const DeterminacyResult& result) {
  const HomCache::Stats stats = result.analysis.hom_cache->stats();
  state.counters["hom_hits"] = static_cast<double>(stats.hits);
  state.counters["hom_misses"] = static_cast<double>(stats.misses);
  state.counters["hom_evictions"] = static_cast<double>(stats.evictions);
  state.counters["hom_entries"] = static_cast<double>(stats.entries);
  state.counters["hom_bytes"] = static_cast<double>(stats.bytes);
}

/// Builds k pairwise non-isomorphic connected components: directed cycles
/// of lengths 1..k.
std::vector<Structure> CycleComponents(const std::shared_ptr<Schema>& schema,
                                       std::size_t k) {
  std::vector<Structure> components;
  for (std::size_t len = 1; len <= k; ++len) {
    Structure c(schema);
    for (Element i = 0; i < len; ++i) {
      c.AddFact(0, {i, static_cast<Element>((i + 1) % len)});
    }
    components.push_back(std::move(c));
  }
  return components;
}

Structure Combine(const std::shared_ptr<Schema>& schema,
                  const std::vector<Structure>& components,
                  const std::vector<int>& multiplicities) {
  Structure s(schema);
  for (std::size_t i = 0; i < components.size(); ++i) {
    for (int m = 0; m < multiplicities[i]; ++m) {
      s = DisjointUnion(s, components[i]);
    }
  }
  return s;
}

/// A determined instance with k components: q = Σ w_i, views
/// v_j = q + w_j (j = 1..k) and v_0 = 2q, giving a solvable system.
struct Instance {
  ConjunctiveQuery q;
  std::vector<ConjunctiveQuery> views;
};

Instance DeterminedInstance(std::size_t k) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  std::vector<Structure> comps = CycleComponents(schema, k);
  std::vector<int> ones(k, 1);
  Instance inst{BooleanQueryFromStructure("q", Combine(schema, comps, ones)),
                {}};
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<int> mult(k, 1);
    mult[j] = 2;
    inst.views.push_back(BooleanQueryFromStructure(
        "v" + std::to_string(j), Combine(schema, comps, mult)));
  }
  std::vector<int> twos(k, 2);
  inst.views.push_back(
      BooleanQueryFromStructure("v2q", Combine(schema, comps, twos)));
  return inst;
}

/// A non-determined instance: q = Σ w_i with one aggregate view Σ i·w_i,
/// whose vector (1,2,..,k) is not parallel to q⃗ = (1,..,1) for k >= 2.
Instance UndeterminedInstance(std::size_t k) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  std::vector<Structure> comps = CycleComponents(schema, k);
  std::vector<int> ones(k, 1);
  Instance inst{BooleanQueryFromStructure("q", Combine(schema, comps, ones)),
                {}};
  std::vector<int> ramp(k);
  for (std::size_t i = 0; i < k; ++i) ramp[i] = static_cast<int>(i + 1);
  inst.views.push_back(
      BooleanQueryFromStructure("v", Combine(schema, comps, ramp)));
  return inst;
}

void BM_DecideDetermined(benchmark::State& state) {
  Instance inst = DeterminedInstance(static_cast<std::size_t>(state.range(0)));
  // Bignum spill commits + limb-arena block growth per decide: the radix
  // counts at k >= 8 are hundreds of bits wide, so this tracks how much
  // of the exact-arithmetic tail escapes the per-thread scratch arena.
  const std::uint64_t allocs_before = limb::HeapAllocCount();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideBagDeterminacy(inst.views, inst.q));
  }
  state.counters["heap_allocs"] =
      state.iterations() != 0
          ? static_cast<double>(limb::HeapAllocCount() - allocs_before) /
                static_cast<double>(state.iterations())
          : 0.0;
  state.SetLabel("k=" + std::to_string(state.range(0)) + " determined");
}
BENCHMARK(BM_DecideDetermined)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(8);

void BM_DecideDeterminedGoverned(benchmark::State& state) {
  // Same workload through the governed entry point with an unlimited
  // context: measures the pure overhead of the checkpoint/charge plumbing
  // (TLS install, sampled clock reads, byte accounting). Compare against
  // BM_DecideDetermined at the same k — the acceptance bar is <= 2%.
  Instance inst = DeterminedInstance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ExecContext exec{ExecLimits{}};
    benchmark::DoNotOptimize(DecideBagDeterminacyGoverned(
        inst.views, inst.q, DeterminacyOptions(), exec));
  }
  state.SetLabel("k=" + std::to_string(state.range(0)) +
                 " determined, governed (no limits)");
}
BENCHMARK(BM_DecideDeterminedGoverned)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(8);

void BM_DecideUndeterminedNoCertificate(benchmark::State& state) {
  Instance inst =
      UndeterminedInstance(static_cast<std::size_t>(state.range(0)));
  DeterminacyOptions options;
  options.want_counterexample = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideBagDeterminacy(inst.views, inst.q, options));
  }
  state.SetLabel("k=" + std::to_string(state.range(0)) + " decision only");
}
BENCHMARK(BM_DecideUndeterminedNoCertificate)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(8);

void BM_DecideUndeterminedWithCounterexample(benchmark::State& state) {
  Instance inst =
      UndeterminedInstance(static_cast<std::size_t>(state.range(0)));
  DeterminacyResult last;
  for (auto _ : state) {
    last = DecideBagDeterminacy(inst.views, inst.q);
    benchmark::DoNotOptimize(last.counterexample.has_value());
  }
  ReportCacheStats(state, last);
  state.SetLabel("k=" + std::to_string(state.range(0)) + " with certificate");
}
BENCHMARK(BM_DecideUndeterminedWithCounterexample)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

void BM_AnalyzeOnlyManyViews(benchmark::State& state) {
  // Scaling in |V0| with fixed k: the containment filter plus vectorization.
  Instance base = DeterminedInstance(3);
  std::vector<ConjunctiveQuery> views;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    views.push_back(base.views[static_cast<std::size_t>(i) %
                               base.views.size()]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeInstance(views, base.q));
  }
  state.SetLabel("|V0|=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_AnalyzeOnlyManyViews)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
