// Regenerates the paper's worked examples as a table (EXPERIMENTS.md ids
// EX2, EX3, EX13, EX32, C33): for each, the paper's claim and the verdict
// our implementation computes.

#include <iostream>
#include <string>

#include "core/determinacy.h"
#include "path/path_query.h"
#include "path/qwalk.h"
#include "query/parser.h"

namespace bagdet {
namespace {

void Row(const std::string& id, const std::string& claim,
         const std::string& computed, bool match) {
  std::cout << id << " | " << claim << " | " << computed << " | "
            << (match ? "REPRODUCED" : "MISMATCH") << "\n";
}

void Example2() {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q()  :- P(u,x), R(x,y), S(y,z)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- P(u,x), R(x,y)"),
      parser.ParseRule("v2() :- R(x,y), S(y,z)"),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  bool verified =
      result.counterexample.has_value() &&
      !VerifyCounterexample(result.analysis, *result.counterexample)
           .has_value();
  Row("EX2", "V -->set q but V -/->bag q",
      std::string(result.determined ? "bag-determined"
                                    : "NOT bag-determined") +
          ", counterexample " + (verified ? "verified" : "FAILED"),
      !result.determined && verified);
}

void Example3() {
  // UCQ identity q(D) = v2(D) − v1(D) checked over a parameter sweep.
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x)");
  ConjunctiveQuery v1 = parser.ParseRule("v1() :- P(x)");
  UnionQuery v2("v2", {parser.ParseRule("a() :- P(x)"),
                       parser.ParseRule("b() :- R(x)")});
  RelationId r = *parser.schema()->Find("R");
  RelationId p = *parser.schema()->Find("P");
  bool holds = true;
  for (int np = 0; np < 5; ++np) {
    for (int nr = 0; nr < 5; ++nr) {
      Structure d(parser.schema());
      for (int i = 0; i < np; ++i) d.AddFact(p, {d.AddElement()});
      for (int i = 0; i < nr; ++i) d.AddFact(r, {d.AddElement()});
      if (q.CountHomomorphisms(d) != v2.Count(d) - v1.CountHomomorphisms(d)) {
        holds = false;
      }
    }
  }
  Row("EX3", "UCQ views: q(D) = v2(D) - v1(D), so V -->bag q",
      holds ? "identity holds on 25-point sweep" : "identity FAILS", holds);
}

void Example13() {
  auto schema = std::make_shared<Schema>();
  PathQuery q = PathQuery::FromWord("ABCD", schema);
  std::vector<PathQuery> views = {PathQuery::FromWord("ABC", schema),
                                  PathQuery::FromWord("BC", schema),
                                  PathQuery::FromWord("BCD", schema)};
  PathDeterminacyResult result = DecidePathDeterminacy(q, views);
  std::string walk_text = "(no path)";
  bool reduced = false;
  if (result.determined) {
    SignedWord walk = BuildQWalk(q, views, result.path);
    walk_text = SignedWordToString(walk, *schema);
    reduced = IsQWalk(walk, q) &&
              ReduceToFixpointPlusMinus(walk).back() == ToSignedWord(q);
  }
  Row("EX13", "path eps->ABC->A->ABCD exists; walk reduces to q",
      "determined=" + std::string(result.determined ? "yes" : "no") +
          ", q-walk " + walk_text +
          (reduced ? " reduces to ABCD" : " (reduction FAILED)"),
      result.determined && reduced);
}

void Example32() {
  auto schema = std::make_shared<Schema>();
  RelationId r = schema->AddRelation("R", 2);
  Structure loop(schema);
  loop.AddFact(r, {0, 0});
  Structure edge(schema);
  edge.AddFact(r, {0, 1});
  Structure path2(schema);
  path2.AddFact(r, {0, 1});
  path2.AddFact(r, {1, 2});
  auto combine = [&](int a, int b, int c) {
    Structure s(schema);
    for (int i = 0; i < a; ++i) s = DisjointUnion(s, loop);
    for (int i = 0; i < b; ++i) s = DisjointUnion(s, edge);
    for (int i = 0; i < c; ++i) s = DisjointUnion(s, path2);
    return s;
  };
  ConjunctiveQuery q = BooleanQueryFromStructure("q", combine(1, 1, 2));
  std::vector<ConjunctiveQuery> views = {
      BooleanQueryFromStructure("v1", combine(2, 1, 3)),
      BooleanQueryFromStructure("v2", combine(5, 2, 7)),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  std::string witness = "(none)";
  if (result.witness.has_value()) {
    witness = "alpha = " + result.witness->exponents.ToString();
  }
  bool expected = result.determined && result.witness.has_value() &&
                  result.witness->exponents ==
                      Vec{Rational(3), Rational(-1)};
  Row("EX32", "q-vec = 3*v1-vec - v2-vec (witness exponents 3, -1)", witness,
      expected);
}

void Corollary33() {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,y), E(y,z)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- E(x,y)"),
      parser.ParseRule("v2() :- E(x,y), E(y,z), E(z,w)"),
  };
  DeterminacyOptions options;
  options.want_counterexample = false;
  bool without = DecideBagDeterminacy(views, q, options).determined;
  views.push_back(parser.ParseRule("v3() :- E(a,b), E(b,c)"));
  bool with_q = DecideBagDeterminacy(views, q, options).determined;
  Row("C33", "connected case: determined iff q itself is a view",
      std::string("without q: ") + (without ? "determined" : "not") +
          "; with q: " + (with_q ? "determined" : "not"),
      !without && with_q);
}

}  // namespace
}  // namespace bagdet

int main() {
  std::cout << "id | paper claim | computed | status\n";
  std::cout << "---|---|---|---\n";
  bagdet::Example2();
  bagdet::Example3();
  bagdet::Example13();
  bagdet::Example32();
  bagdet::Corollary33();
  return 0;
}
