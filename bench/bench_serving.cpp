// bench_serving: zipfian closed-loop throughput/latency benchmark for the
// always-on DeterminacyService (serve/service.h).
//
// Workload: a key space of distinct determinacy instances (alternating
// determined / undetermined, growing k) sampled rank-skewed (zipf s=1.1) —
// hot instances repeat, so the persistent pool + sharded HomCache should
// convert the head of the distribution into cache hits. Clients submit in
// bursts (burst size > queue capacity now and then), so admission control
// genuinely sheds under the spikes; every request carries a per-request
// deadline, so oversized work declines typed instead of hogging a runner.
//
// Output: a machine-readable JSON report (p50/p90/p99/max latency over
// completed requests, throughput, outcome/retry/rotation counters,
// cache-hit rate) written to the path given as the first positional arg
// (default BENCH_serving.json). The checked-in BENCH_serving.json pairs a
// plain run with a failpoint-armed run on the same host.
//
// Flags:
//   --failpoints   arm serve/dispatch (bad_alloc, p=.05) and hom/dp_step
//                  (cancel, p=.002) for the whole run — requires a
//                  -DBAGDET_FAILPOINTS=ON build; the run must still finish
//                  with every request in exactly one typed outcome.
//   --requests=N   total requests (default 400)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <future>
#include <mutex>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "query/cq.h"
#include "serve/service.h"
#include "structs/structure.h"
#include "util/failpoint.h"

namespace {

using namespace bagdet;

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

Structure Combine(const std::shared_ptr<Schema>& schema, std::size_t k,
                  const std::vector<int>& mult) {
  Structure s(schema);
  for (std::size_t len = 1; len <= k; ++len) {
    Structure c(schema);
    for (Element i = 0; i < len; ++i) {
      c.AddFact(0, {i, static_cast<Element>((i + 1) % len)});
    }
    for (int m = 0; m < mult[len - 1]; ++m) s = DisjointUnion(s, c);
  }
  return s;
}

/// Key space: rank r maps to a deterministic instance; even ranks are
/// determined (view = query), odd ranks undetermined (ramp view, full
/// counterexample pipeline), and every 8th rank is the tier-0 blind pair
/// under a crippled distinguisher — a deterministic degraded answer
/// (verdict without certificate), so the degrade tier shows up in the
/// steady-state counters, not only under faults.
ServeRequest InstanceForRank(const std::shared_ptr<Schema>& schema,
                             std::size_t rank) {
  if (rank % 8 == 7) {
    Structure a(schema), b(schema);
    const std::pair<Element, Element> ea[] = {{0, 0}, {0, 1}, {0, 3},
                                              {1, 1}, {1, 2}, {2, 0}};
    const std::pair<Element, Element> eb[] = {{0, 0}, {0, 2}, {0, 3},
                                              {1, 3}, {2, 0}, {2, 2}};
    for (const auto& [u, v] : ea) a.AddFact(0, {u, v});
    for (const auto& [u, v] : eb) b.AddFact(0, {u, v});
    ServeRequest req;
    req.query = BooleanQueryFromStructure("q", DisjointUnion(a, b));
    req.views.push_back(BooleanQueryFromStructure(
        "v", DisjointUnion(DisjointUnion(a, b), b)));
    req.options.distinguisher.max_subset_domain = 2;
    req.options.distinguisher.random_attempts = 1;
    req.options.distinguisher.max_random_domain = 1;
    req.limits.deadline_ms = 2000;
    return req;
  }
  const std::size_t k = 2 + (rank / 2) % 3;  // k in {2, 3, 4}.
  ServeRequest req;
  std::vector<int> ones(k, 1);
  if (rank % 2 == 0) {
    // Shift multiplicities by rank so distinct ranks are distinct classes.
    std::vector<int> mult(ones);
    mult[0] += static_cast<int>(rank / 6);
    Structure body = Combine(schema, k, mult);
    req.query = BooleanQueryFromStructure("q", body);
    req.views.push_back(BooleanQueryFromStructure("v", body));
  } else {
    std::vector<int> ramp(k);
    for (std::size_t i = 0; i < k; ++i) {
      ramp[i] = static_cast<int>(i + 1 + rank / 6);
    }
    req.query = BooleanQueryFromStructure("q", Combine(schema, k, ones));
    req.views.push_back(
        BooleanQueryFromStructure("v", Combine(schema, k, ramp)));
  }
  req.limits.deadline_ms = 2000;
  return req;
}

/// Rank-skewed sampling: P(rank) ∝ 1 / (rank+1)^s.
class Zipf {
 public:
  Zipf(std::size_t n, double s) {
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }
  std::size_t Sample(std::mt19937& rng) const {
    const double u =
        std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serving.json";
  bool arm_failpoints = false;
  std::size_t total_requests = 400;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--failpoints") {
      arm_failpoints = true;
    } else if (arg.rfind("--requests=", 0) == 0) {
      total_requests = std::stoull(arg.substr(11));
    } else {
      out_path = arg;
    }
  }
  if (arm_failpoints && !failpoint::Enabled()) {
    std::fprintf(stderr,
                 "--failpoints needs a -DBAGDET_FAILPOINTS=ON build\n");
    return 2;
  }
  if (arm_failpoints) {
    failpoint::Arm("serve/dispatch",
                   {failpoint::Action::kBadAlloc, /*probability=*/0.05});
    failpoint::Arm("hom/dp_step",
                   {failpoint::Action::kCancel, /*probability=*/0.002});
  }

  constexpr std::size_t kKeySpace = 32;
  constexpr double kZipfS = 1.1;
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kBurst = 6;

  auto schema = GraphSchema();
  const Zipf zipf(kKeySpace, kZipfS);

  ServiceOptions opts;
  opts.max_concurrent = 2;
  opts.max_queue = 16;
  opts.max_retries = 2;
  DeterminacyService service(opts);

  std::vector<double> latencies_ms;  // Completed (answered/degraded) only.
  std::vector<double> shed_retry_after_ms;
  std::mutex record_mu;
  const std::size_t per_client = total_requests / kClients;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(1000 + static_cast<unsigned>(c));
      std::size_t sent = 0;
      while (sent < per_client) {
        // Burst submit, then drain the burst: spikes overflow the queue.
        const std::size_t burst = std::min(kBurst, per_client - sent);
        std::vector<std::chrono::steady_clock::time_point> starts;
        std::vector<std::future<ServeResponse>> futures;
        for (std::size_t b = 0; b < burst; ++b) {
          starts.push_back(std::chrono::steady_clock::now());
          futures.push_back(
              service.Submit(InstanceForRank(schema, zipf.Sample(rng))));
        }
        sent += burst;
        for (std::size_t b = 0; b < burst; ++b) {
          ServeResponse resp = futures[b].get();
          const double ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - starts[b])
                  .count();
          std::lock_guard<std::mutex> lock(record_mu);
          if (resp.outcome == ServeOutcome::kAnswered ||
              resp.outcome == ServeOutcome::kDegraded) {
            latencies_ms.push_back(ms);
          } else if (resp.outcome == ServeOutcome::kShed) {
            shed_retry_after_ms.push_back(resp.retry_after_ms);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.Shutdown();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  if (arm_failpoints) failpoint::DisarmAll();

  const ServiceStats stats = service.stats();
  const std::uint64_t finished =
      stats.answered + stats.degraded + stats.shed + stats.declined;
  if (finished != stats.submitted) {
    std::fprintf(stderr,
                 "FATAL: outcome counters (%llu) != submitted (%llu)\n",
                 static_cast<unsigned long long>(finished),
                 static_cast<unsigned long long>(stats.submitted));
    return 1;
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double cache_total =
      static_cast<double>(stats.cache_hits + stats.cache_misses);
  const double hit_rate =
      cache_total > 0.0 ? static_cast<double>(stats.cache_hits) / cache_total
                        : 0.0;
  const double mean_retry_after =
      shed_retry_after_ms.empty()
          ? 0.0
          : std::accumulate(shed_retry_after_ms.begin(),
                            shed_retry_after_ms.end(), 0.0) /
                static_cast<double>(shed_retry_after_ms.size());

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"description\": \"DeterminacyService zipfian closed-loop "
               "bench: %zu-key space (s=%.1f), %zu clients x burst %zu, "
               "max_concurrent=%zu, max_queue=%zu, per-request deadline "
               "2000ms. Latency percentiles over answered+degraded "
               "requests, submit-to-response wall time.\",\n",
               kKeySpace, kZipfS, kClients, kBurst, opts.max_concurrent,
               opts.max_queue);
  std::fprintf(out, "  \"failpoints_armed\": %s,\n",
               arm_failpoints ? "true" : "false");
  std::fprintf(out, "  \"requests\": %llu,\n",
               static_cast<unsigned long long>(stats.submitted));
  std::fprintf(out, "  \"wall_seconds\": %.3f,\n", wall_s);
  std::fprintf(out, "  \"throughput_rps\": %.1f,\n",
               static_cast<double>(stats.submitted) / wall_s);
  std::fprintf(out,
               "  \"latency_ms\": {\"p50\": %.3f, \"p90\": %.3f, "
               "\"p99\": %.3f, \"max\": %.3f},\n",
               Percentile(latencies_ms, 0.50), Percentile(latencies_ms, 0.90),
               Percentile(latencies_ms, 0.99),
               latencies_ms.empty() ? 0.0 : latencies_ms.back());
  std::fprintf(out,
               "  \"outcomes\": {\"answered\": %llu, \"degraded\": %llu, "
               "\"shed\": %llu, \"declined\": %llu},\n",
               static_cast<unsigned long long>(stats.answered),
               static_cast<unsigned long long>(stats.degraded),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.declined));
  std::fprintf(out, "  \"retries\": %llu,\n",
               static_cast<unsigned long long>(stats.retries));
  std::fprintf(out, "  \"rotations\": %llu,\n",
               static_cast<unsigned long long>(stats.rotations));
  std::fprintf(out, "  \"mean_shed_retry_after_ms\": %.3f,\n",
               mean_retry_after);
  std::fprintf(out,
               "  \"cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"hit_rate\": %.3f},\n",
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.cache_misses), hit_rate);
  std::fprintf(out,
               "  \"pool\": {\"classes\": %llu, \"approx_bytes\": %llu}\n",
               static_cast<unsigned long long>(stats.pool_classes),
               static_cast<unsigned long long>(stats.pool_bytes));
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf(
      "%llu requests in %.2fs (%.1f rps): %llu answered, %llu degraded, "
      "%llu shed, %llu declined; retries %llu; p50 %.2fms p99 %.2fms; "
      "cache hit rate %.1f%%\n",
      static_cast<unsigned long long>(stats.submitted), wall_s,
      static_cast<double>(stats.submitted) / wall_s,
      static_cast<unsigned long long>(stats.answered),
      static_cast<unsigned long long>(stats.degraded),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.declined),
      static_cast<unsigned long long>(stats.retries),
      Percentile(latencies_ms, 0.50), Percentile(latencies_ms, 0.99),
      100.0 * hit_rate);
  return 0;
}
