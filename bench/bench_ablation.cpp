// Ablation benchmarks for the design choices DESIGN.md calls out:
//  1. hom counting by variable elimination (default) vs. per-hom
//     enumeration — the reason astronomically-counted instances terminate;
//  2. symbolic Lemma-4 evaluation on StructureExpr terms vs.
//     materialize-then-count — the reason the good basis is usable at all;
//  3. the tiered distinguisher search: cheap self-candidates vs. jumping
//     straight into the exhaustive induced-substructure sweep.

#include <benchmark/benchmark.h>

#include "core/distinguisher.h"
#include "hom/hom.h"
#include "hom/symbolic.h"
#include "structs/generator.h"
#include "structs/structure_expr.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

Structure PathGraph(const std::shared_ptr<Schema>& schema, Element edges) {
  Structure s(schema);
  for (Element i = 0; i < edges; ++i) {
    s.AddFact(0, {i, static_cast<Element>(i + 1)});
  }
  return s;
}

Structure Clique(const std::shared_ptr<Schema>& schema, Element n) {
  Structure s(schema, n);
  for (Element i = 0; i < n; ++i) {
    for (Element j = 0; j < n; ++j) {
      if (i != j) s.AddFact(0, {i, j});
    }
  }
  return s;
}

// --- Ablation 1: variable elimination vs. enumeration. -------------------

void BM_CountVariableElimination(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, static_cast<Element>(state.range(0)));
  Structure clique = Clique(schema, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(path, clique));
  }
  state.SetLabel("count ~ 5*4^" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CountVariableElimination)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_CountEnumeration(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, static_cast<Element>(state.range(0)));
  Structure clique = Clique(schema, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHomsByEnumeration(path, clique));
  }
  state.SetLabel("count ~ 5*4^" + std::to_string(state.range(0)) +
                 " (per-hom cost)");
}
// Enumeration visits every hom: 5*4^12 ≈ 84M already takes seconds, so the
// sweep stops where variable elimination is still microseconds.
BENCHMARK(BM_CountEnumeration)->Arg(4)->Arg(8)->Arg(10);

// --- Ablation 2: symbolic vs. materialized evaluation. --------------------

void BM_SymbolicCountOnScaledTerm(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure edge(schema);
  edge.AddFact(0, {0, 1});
  Structure probe = PathGraph(schema, 2);
  StructureExpr term = StructureExpr::Scalar(
      BigInt(state.range(0)), StructureExpr::Base(Clique(schema, 4)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHomsSymbolic(probe, term));
  }
  state.SetLabel("t = " + std::to_string(state.range(0)) + ", symbolic");
}
BENCHMARK(BM_SymbolicCountOnScaledTerm)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_MaterializedCountOnScaledTerm(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure probe = PathGraph(schema, 2);
  StructureExpr term = StructureExpr::Scalar(
      BigInt(state.range(0)), StructureExpr::Base(Clique(schema, 4)));
  for (auto _ : state) {
    std::optional<Structure> m = term.Materialize(1u << 20);
    benchmark::DoNotOptimize(CountHoms(probe, *m));
  }
  state.SetLabel("t = " + std::to_string(state.range(0)) + ", materialized");
}
BENCHMARK(BM_MaterializedCountOnScaledTerm)->Arg(8)->Arg(64)->Arg(512);

void BM_SymbolicCountOnPowerTerm(benchmark::State& state) {
  // (K4)^t: materialization is 4^t elements; symbolic stays flat.
  auto schema = GraphSchema();
  Structure probe = PathGraph(schema, 2);
  StructureExpr term = StructureExpr::Power(
      StructureExpr::Base(Clique(schema, 4)),
      static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHomsSymbolic(probe, term));
  }
  state.SetLabel("(K4)^" + std::to_string(state.range(0)) +
                 " — materialized size 4^" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SymbolicCountOnPowerTerm)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// --- Ablation 3: distinguisher tiers. -------------------------------------

void BM_DistinguisherWithCheapTier(benchmark::State& state) {
  // Default options: tier 0 (the inputs themselves) usually hits.
  auto schema = GraphSchema();
  Structure a = PathGraph(schema, static_cast<Element>(state.range(0)));
  Structure b = Clique(schema, 3);
  DistinguisherOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindDistinguisher(a, b, options));
  }
}
BENCHMARK(BM_DistinguisherWithCheapTier)->Arg(4)->Arg(8)->Arg(12);

void BM_DistinguisherSubsetSweepWorstCase(benchmark::State& state) {
  // Cycles of close lengths defeat the cheap candidates and exercise the
  // induced-substructure sweep (2^n candidates).
  auto schema = GraphSchema();
  auto cycle = [&](Element n) {
    Structure s(schema);
    for (Element i = 0; i < n; ++i) {
      s.AddFact(0, {i, static_cast<Element>((i + 1) % n)});
    }
    return s;
  };
  Structure a = cycle(static_cast<Element>(state.range(0)));
  Structure b = cycle(static_cast<Element>(2 * state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindDistinguisher(a, b));
  }
  state.SetLabel("C" + std::to_string(state.range(0)) + " vs C" +
                 std::to_string(2 * state.range(0)));
}
BENCHMARK(BM_DistinguisherSubsetSweepWorstCase)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
