// Benchmarks for the Theorem-1 path-query pipeline: prefix-graph
// reachability (Fact 10 / Lemma 11), q-walk reduction (Lemma 15), matrix
// semantics (Fact 18), and the Appendix-B counterexample construction.

#include <benchmark/benchmark.h>

#include "path/matrix_semantics.h"
#include "path/path_query.h"
#include "path/qwalk.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::string RandomWord(Rng* rng, std::size_t length, int alphabet) {
  std::string w;
  for (std::size_t i = 0; i < length; ++i) {
    w.push_back(static_cast<char>('A' + rng->Below(alphabet)));
  }
  return w;
}

void BM_DecidePath(benchmark::State& state) {
  auto schema = std::make_shared<Schema>();
  Rng rng(1);
  PathQuery q = PathQuery::FromWord(
      RandomWord(&rng, static_cast<std::size_t>(state.range(0)), 2), schema);
  std::vector<PathQuery> views;
  for (std::int64_t i = 0; i < state.range(1); ++i) {
    views.push_back(PathQuery::FromWord(
        RandomWord(&rng, 1 + rng.Below(4), 2), schema));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DecidePathDeterminacy(q, views, /*want_counterexample=*/false));
  }
  state.SetLabel("|q|=" + std::to_string(state.range(0)) +
                 " |V|=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_DecidePath)
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4})
    ->Args({1024, 16})
    ->Args({4096, 16});

void BM_QWalkReduction(benchmark::State& state) {
  // Worst-case zig-zag walk of the requested length over q = A^n.
  auto schema = std::make_shared<Schema>();
  PathQuery q = PathQuery::FromWord(
      std::string(static_cast<std::size_t>(state.range(0)), 'A'), schema);
  RelationId a = *schema->Find("A");
  SignedWord walk;
  // Up-down sawtooth: +2, -1 repeated, then finish.
  std::int64_t height = 0;
  while (height < state.range(0)) {
    walk.push_back({a, +1});
    ++height;
    if (height < state.range(0)) {
      walk.push_back({a, +1});
      walk.push_back({a, -1});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceToFixpointPlusMinus(walk));
  }
  state.SetLabel("walk length " + std::to_string(walk.size()));
}
BENCHMARK(BM_QWalkReduction)->Arg(8)->Arg(32)->Arg(128);

void BM_WordMatrixEvaluation(benchmark::State& state) {
  auto schema = std::make_shared<Schema>();
  Rng rng(5);
  PathQuery q = PathQuery::FromWord(
      RandomWord(&rng, static_cast<std::size_t>(state.range(0)), 2), schema);
  Structure d = RandomStructure(schema,
                                static_cast<std::size_t>(state.range(1)),
                                &rng, 1, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WordMatrix(d, q));
  }
  state.SetLabel("|q|=" + std::to_string(state.range(0)) +
                 " n=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_WordMatrixEvaluation)
    ->Args({8, 8})
    ->Args({8, 32})
    ->Args({32, 32})
    ->Args({32, 64});

void BM_PathCounterexample(benchmark::State& state) {
  auto schema = std::make_shared<Schema>();
  // q = (AB)^n with only view BA: never determined.
  std::string word;
  for (std::int64_t i = 0; i < state.range(0); ++i) word += "AB";
  PathQuery q = PathQuery::FromWord(word, schema);
  std::vector<PathQuery> views = {PathQuery::FromWord("BA", schema)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPathCounterexample(q, views));
  }
  state.SetLabel("|q|=" + std::to_string(2 * state.range(0)));
}
BENCHMARK(BM_PathCounterexample)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
