// Benchmarks for the Theorem-2 pipeline: reduction emission, view
// evaluation on structure summaries, and the bounded refutation search
// (which is the best anyone can do — Theorem 2).

#include <benchmark/benchmark.h>

#include <string>

#include "hilbert/polynomial.h"
#include "hilbert/reduction.h"
#include "hilbert/search.h"

namespace bagdet {
namespace {

DiophantineInstance InstanceWithUnknowns(int unknowns) {
  // x0*x1*...*x_{k-1} - 2  (solvable: one unknown 2, rest 1).
  std::string text;
  for (int i = 0; i < unknowns; ++i) {
    if (i) text += "*";
    text += "x" + std::to_string(i);
  }
  text += " - 2";
  return DiophantineInstance::Parse(text);
}

void BM_ReductionEmission(benchmark::State& state) {
  DiophantineInstance inst = InstanceWithUnknowns(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceToDeterminacy(inst));
  }
  state.SetLabel(std::to_string(state.range(0)) + " unknowns");
}
BENCHMARK(BM_ReductionEmission)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ReductionWithLargeCoefficients(benchmark::State& state) {
  // V_I carries |c(m)| disjuncts per monomial: coefficient size scales the
  // emitted UCQ.
  DiophantineInstance inst = DiophantineInstance::Parse(
      std::to_string(state.range(0)) + "*x0 - " +
      std::to_string(state.range(0)) + "*x1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceToDeterminacy(inst));
  }
  state.SetLabel("coefficient " + std::to_string(state.range(0)));
}
BENCHMARK(BM_ReductionWithLargeCoefficients)->Arg(4)->Arg(16)->Arg(64);

void BM_ViewEvaluationOnSummary(benchmark::State& state) {
  DiophantineInstance inst = DiophantineInstance::Parse("x0^2*x1 - 2*x1 + 7");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  Structure d = red.MakeStructure(true, false,
                                  {static_cast<std::uint64_t>(state.range(0)),
                                   static_cast<std::uint64_t>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(red.EvaluateViews(d));
  }
  state.SetLabel("X-counts " + std::to_string(state.range(0)));
}
BENCHMARK(BM_ViewEvaluationOnSummary)->Arg(2)->Arg(8)->Arg(32);

void BM_BoundedRefutationSearch(benchmark::State& state) {
  DiophantineInstance inst = DiophantineInstance::Parse("x0^2 - 9");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SearchNonDeterminacy(red, static_cast<std::uint64_t>(state.range(0))));
  }
  state.SetLabel("bound " + std::to_string(state.range(0)));
}
BENCHMARK(BM_BoundedRefutationSearch)->Arg(3)->Arg(5)->Arg(8);

void BM_DiophantineBruteForce(benchmark::State& state) {
  DiophantineInstance inst =
      DiophantineInstance::Parse("x0^2 + x1^2 - x2^2 - 25");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inst.FindSolution(static_cast<std::uint64_t>(state.range(0))));
  }
  state.SetLabel("box bound " + std::to_string(state.range(0)));
}
BENCHMARK(BM_DiophantineBruteForce)->Arg(5)->Arg(8)->Arg(12);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
