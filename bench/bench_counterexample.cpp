// Benchmarks for the negative-certificate pipeline (Sections 5–7): good
// basis construction (Lemma 40, including the distinguisher search), the
// perturbation synthesis (Lemmas 55–57), and exact verification.

#include <benchmark/benchmark.h>

#include "core/basis.h"
#include "core/counterexample.h"
#include "core/determinacy.h"
#include "query/cq.h"
#include "structs/structure.h"

namespace bagdet {
namespace {

struct Instance {
  ConjunctiveQuery q;
  std::vector<ConjunctiveQuery> views;
};

/// q = Σ_{i<=k} C_i (cycles), one aggregate view v = Σ i·C_i. For k >= 2
/// the vectors (1,..,1) and (1,2,..,k) are not parallel, so q is not
/// determined and a size-k good basis is required.
Instance UndeterminedInstance(std::size_t k) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Structure q_body(schema);
  Structure v_body(schema);
  for (std::size_t len = 1; len <= k; ++len) {
    Structure c(schema);
    for (Element i = 0; i < len; ++i) {
      c.AddFact(0, {i, static_cast<Element>((i + 1) % len)});
    }
    q_body = DisjointUnion(q_body, c);
    for (std::size_t copies = 0; copies < len; ++copies) {
      v_body = DisjointUnion(v_body, c);
    }
  }
  return Instance{BooleanQueryFromStructure("q", q_body),
                  {BooleanQueryFromStructure("v", v_body)}};
}

void BM_BuildGoodBasis(benchmark::State& state) {
  Instance inst = UndeterminedInstance(static_cast<std::size_t>(state.range(0)));
  InstanceAnalysis analysis = AnalyzeInstance(inst.views, inst.q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildGoodBasis(analysis, DistinguisherOptions()));
  }
  state.SetLabel("k=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_BuildGoodBasis)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_SynthesizeCounterexample(benchmark::State& state) {
  Instance inst = UndeterminedInstance(static_cast<std::size_t>(state.range(0)));
  InstanceAnalysis analysis = AnalyzeInstance(inst.views, inst.q);
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SynthesizeCounterexample(analysis, basis));
  }
  state.SetLabel("k=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SynthesizeCounterexample)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_VerifyCounterexampleExact(benchmark::State& state) {
  Instance inst = UndeterminedInstance(static_cast<std::size_t>(state.range(0)));
  InstanceAnalysis analysis = AnalyzeInstance(inst.views, inst.q);
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  BagCounterexample counterexample =
      SynthesizeCounterexample(analysis, basis);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyCounterexample(analysis, counterexample));
  }
  state.SetLabel("k=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_VerifyCounterexampleExact)->Arg(2)->Arg(3)->Arg(4);

void BM_DistinguisherPair(benchmark::State& state) {
  // Distinguishing two cycles of lengths n and n+1.
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  auto cycle = [&](Element n) {
    Structure s(schema);
    for (Element i = 0; i < n; ++i) {
      s.AddFact(0, {i, static_cast<Element>((i + 1) % n)});
    }
    return s;
  };
  Structure a = cycle(static_cast<Element>(state.range(0)));
  Structure b = cycle(static_cast<Element>(state.range(0) + 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindDistinguisher(a, b));
  }
  state.SetLabel("cycles " + std::to_string(state.range(0)) + "/" +
                 std::to_string(state.range(0) + 1));
}
BENCHMARK(BM_DistinguisherPair)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
