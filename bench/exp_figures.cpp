// Regenerates the paper's two figures (EXPERIMENTS.md ids FIG1/EX39,
// EX42, EX54/FIG2):
//  * Figure 1 / Example 39: a pair of connected non-isomorphic structures
//    whose evaluation matrix M_W is singular;
//  * Example 42: with that W as basis, no counterexample exists inside
//    span_N(W), while the good basis repairs it;
//  * Figure 2 / Example 54: the point set P and cone C for a nonsingular
//    2x2 evaluation matrix.

#include <iostream>

#include "core/determinacy.h"
#include "hom/hom.h"
#include "linalg/gauss.h"
#include "query/cq.h"
#include "structs/generator.h"

namespace bagdet {
namespace {

/// Finds a Figure-1-like pair: connected, non-isomorphic, hom(w2,w1) > 0,
/// singular 2x2 hom matrix.
std::pair<Structure, Structure> FindSingularPair() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  std::vector<Structure> all;
  for (std::size_t n = 1; n <= 3; ++n) {
    EnumerateStructures(schema, n, [&](const Structure& s) {
      if (s.IsConnected()) all.push_back(s);
      return true;
    });
  }
  for (const Structure& w1 : all) {
    for (const Structure& w2 : all) {
      if (IsIsomorphic(w1, w2) || CountHoms(w2, w1).IsZero()) continue;
      BigInt h11 = CountHoms(w1, w1), h12 = CountHoms(w1, w2);
      BigInt h21 = CountHoms(w2, w1), h22 = CountHoms(w2, w2);
      if (h11 * h22 == h12 * h21) return {w1, w2};
    }
  }
  throw std::runtime_error("no singular pair found");
}

void Figure1AndExample42() {
  auto [w1, w2] = FindSingularPair();
  std::cout << "== Figure 1 / Example 39: singular M_W ==\n";
  std::cout << "w1 = " << w1.ToString() << "\n";
  std::cout << "w2 = " << w2.ToString() << "\n";
  std::cout << "M_W = [hom(wi,wj)]:\n";
  std::cout << "      " << CountHoms(w1, w1) << "  " << CountHoms(w1, w2)
            << "\n      " << CountHoms(w2, w1) << "  " << CountHoms(w2, w2)
            << "\n";
  Mat mw(2, 2);
  mw.At(0, 0) = Rational(CountHoms(w1, w1));
  mw.At(0, 1) = Rational(CountHoms(w1, w2));
  mw.At(1, 0) = Rational(CountHoms(w2, w1));
  mw.At(1, 1) = Rational(CountHoms(w2, w2));
  std::cout << "det(M_W) = " << Determinant(mw)
            << "  (paper: singular, so S = W is NOT good)\n\n";

  std::cout << "== Example 42: the good basis repairs W ==\n";
  ConjunctiveQuery q = BooleanQueryFromStructure("q", w1);
  ConjunctiveQuery v = BooleanQueryFromStructure("v", w2);
  DeterminacyResult result = DecideBagDeterminacy({v}, q);
  std::cout << result.Summary() << "\n";
  if (result.counterexample.has_value()) {
    std::cout << "good-basis evaluation matrix:\n"
              << result.counterexample->evaluation_matrix.ToString() << "\n";
    std::cout << "det = "
              << Determinant(result.counterexample->evaluation_matrix)
              << " (nonsingular, as Lemma 40 requires)\n";
    auto issue = VerifyCounterexample(result.analysis, *result.counterexample);
    std::cout << "counterexample verification: "
              << (issue ? *issue : std::string("OK (exact)")) << "\n";
  }
  std::cout << "\n";
}

void Figure2Example54() {
  std::cout << "== Figure 2 / Example 54: the point set P and cone C ==\n";
  // Example 54 reuses the Figure-1 pair with s1 = a single vertex carrying
  // all loops and s2 = w2; the evaluation matrix becomes nonsingular.
  auto [w1, w2] = FindSingularPair();
  Structure s1 = AllLoopsSingleton(w1.schema_ptr());
  Structure s2 = w2;
  Mat m(2, 2);
  m.At(0, 0) = Rational(CountHoms(w1, s1));
  m.At(0, 1) = Rational(CountHoms(w1, s2));
  m.At(1, 0) = Rational(CountHoms(w2, s1));
  m.At(1, 1) = Rational(CountHoms(w2, s2));
  std::cout << "M_S =\n" << m.ToString() << "\n";
  std::cout << "det(M_S) = " << Determinant(m)
            << " (nonsingular: C has nonempty interior)\n";
  std::cout << "points of P (x = answer to w1, y = answer to w2), "
               "a,b = multiplicities of s1,s2:\n";
  std::cout << "a b | w1(a*s1+b*s2) w2(a*s1+b*s2) | M*(a,b)\n";
  for (int a = 0; a <= 3; ++a) {
    for (int b = 0; b <= 3; ++b) {
      Structure s =
          DisjointUnion(ScalarMultiple(a, s1), ScalarMultiple(b, s2));
      Vec point = m.Apply(Vec{Rational(a), Rational(b)});
      std::cout << a << " " << b << " | " << CountHoms(w1, s) << " "
                << CountHoms(w2, s) << " | " << point.ToString() << "\n";
    }
  }
  std::cout << "cone C = { M x : x >= 0 } is spanned by the columns "
            << m.Col(0).ToString() << " and " << m.Col(1).ToString() << "\n";
}

}  // namespace
}  // namespace bagdet

int main() {
  bagdet::Figure1AndExample42();
  bagdet::Figure2Example54();
  return 0;
}
