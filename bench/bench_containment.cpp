// Benchmarks for set-semantics containment (hom-existence), the filter that
// computes V = { v ∈ V0 : q ⊆set v } (Definition 25) — the Σ^P_2-flavored
// part of the decision procedure the paper points out.

#include <benchmark/benchmark.h>

#include "query/cq.h"
#include "query/parser.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

ConjunctiveQuery ChainQuery(const std::shared_ptr<Schema>& schema,
                            std::string name, Element length) {
  Structure body(schema);
  RelationId e = *schema->Find("E");
  for (Element i = 0; i < length; ++i) {
    body.AddFact(e, {i, static_cast<Element>(i + 1)});
  }
  return BooleanQueryFromStructure(std::move(name), body);
}

void BM_ChainIntoChain(benchmark::State& state) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  ConjunctiveQuery q =
      ChainQuery(schema, "q", static_cast<Element>(state.range(0)));
  ConjunctiveQuery v =
      ChainQuery(schema, "v", static_cast<Element>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContainedSetSemantics(q, v));
  }
  state.SetLabel("|q|=" + std::to_string(state.range(0)) +
                 " |v|=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_ChainIntoChain)
    ->Args({8, 4})
    ->Args({16, 8})
    ->Args({32, 16})
    ->Args({64, 32});

void BM_RandomContainment(benchmark::State& state) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Rng rng(3);
  ConjunctiveQuery q = BooleanQueryFromStructure(
      "q", RandomConnectedStructure(
               schema, static_cast<std::size_t>(state.range(0)), &rng, 2, 3));
  ConjunctiveQuery v = BooleanQueryFromStructure(
      "v", RandomConnectedStructure(
               schema, static_cast<std::size_t>(state.range(1)), &rng, 2, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContainedSetSemantics(q, v));
  }
}
BENCHMARK(BM_RandomContainment)->Args({6, 4})->Args({8, 5})->Args({10, 6});

void BM_RelevantViewFilter(benchmark::State& state) {
  // The full Definition-25 filter over a growing view set.
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Rng rng(9);
  ConjunctiveQuery q = ChainQuery(schema, "q", 6);
  std::vector<ConjunctiveQuery> views;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    views.push_back(BooleanQueryFromStructure(
        "v" + std::to_string(i),
        RandomConnectedStructure(schema, 2 + rng.Below(4), &rng, 2, 3)));
  }
  for (auto _ : state) {
    std::size_t relevant = 0;
    for (const ConjunctiveQuery& v : views) {
      if (IsContainedSetSemantics(q, v)) ++relevant;
    }
    benchmark::DoNotOptimize(relevant);
  }
}
BENCHMARK(BM_RelevantViewFilter)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
