// bagdet_tune: on-machine calibration of the pipeline's dispatch gates.
//
// Every gate in the library's TuningProfile (util/tuning.h) defaults to a
// crossover measured on the 1-core reference host. This tool re-measures
// each crossover on the machine it runs on — modular-vs-exact inverse by
// dimension and entry size, Dixon-vs-CRT, the hom-core order-search and
// domain-engage thresholds, thread-pool width, parallel-split chunking —
// using the same seeded generators the differential suites trust
// (tests/test_matrices.h, structs/generator.h), then writes
//
//   * a tuning profile (`key = value`, loadable via BAGDET_TUNING_PROFILE)
//     re-pointing the library's dispatch defaults at the measured machine,
//   * a JSON report with the machine fingerprint and every sweep's raw
//     timings, uploaded by CI (perf-gate + nightly jobs) so the calibration
//     trajectory per runner stays inspectable.
//
// Every knob swept here is dispatch-only (each gated path is verified
// bit-identical to its alternative; see tests/tuning_test.cpp), so a wrong
// pick costs wall-clock, never correctness — which is what makes an
// automated sweep safe to run in CI.
//
// Usage: bagdet_tune [--dry-run | --full] [--out <profile>] [--report <json>]
//   --dry-run   Minimal sweep (~seconds): smoke coverage for CI and the
//               nightly artifact. Chosen values are written as usual but a
//               dry-run profile is a liveness artifact, not a calibration.
//   (default)   Bounded sweep (~1 min): the perf-gate configuration.
//   --full      Extended sizes and repetitions for a committed profile.
// Exit codes: 0 = profile + report written, 1 = write failure, 2 = usage.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hom/hom.h"
#include "linalg/gauss.h"
#include "linalg/matrix.h"
#include "linalg/modular_solve.h"
#include "structs/generator.h"
#include "structs/schema.h"
#include "structs/structure.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/tuning.h"

#include "tests/test_matrices.h"

#ifdef __unix__
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace bagdet {
namespace {

enum class Mode { kDryRun, kDefault, kFull };

struct Fingerprint {
  std::string host = "unknown";
  std::string machine = "unknown";
  unsigned cpus = 1;
  unsigned word_bits = sizeof(void*) * 8;

  /// Stable slug used to label profiles/baselines: "<host>-<machine>-<N>c".
  std::string Slug() const {
    std::ostringstream out;
    out << host << "-" << machine << "-" << cpus << "c";
    return out.str();
  }
};

Fingerprint MachineFingerprint() {
  Fingerprint fp;
  const unsigned hw = std::thread::hardware_concurrency();
  fp.cpus = hw == 0 ? 1 : hw;
#ifdef __unix__
  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    fp.host = host;
  }
  struct utsname uts;
  if (::uname(&uts) == 0) fp.machine = uts.machine;
#endif
  return fp;
}

/// Best-of-`reps` wall time of `fn`, in milliseconds. Best-of (not mean)
/// because scheduling noise on shared CI runners is strictly additive.
double TimeMs(const std::function<void()>& fn, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// One measured point of a sweep, serialized into the JSON report.
struct Point {
  std::string label;
  double ms_a = 0.0;  ///< First alternative (meaning depends on the sweep).
  double ms_b = -1.0; ///< Second alternative; < 0 = single-valued point.
};

struct Sweep {
  std::string name;
  std::string columns;  ///< "label, <meaning of a>, <meaning of b>".
  std::vector<Point> points;
  std::string decision;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

// --- Sweeps ----------------------------------------------------------------

/// Modular-vs-exact inverse crossovers. Returns the word-size always-on
/// dimension and the big-entry (>= 32 bit) minimum dimension.
Sweep SweepInverseGate(Mode mode, std::size_t* min_dim, std::size_t* always_dim) {
  const int reps = mode == Mode::kDryRun ? 1 : (mode == Mode::kFull ? 5 : 3);
  const std::size_t max_n_word = mode == Mode::kDryRun ? 6 : 12;
  const std::size_t max_n_big = mode == Mode::kDryRun ? 5 : 8;
  Sweep sweep;
  sweep.name = "inverse_gate";
  sweep.columns = "n/<entries>, exact_ms, modular_ms";
  Rng rng(101);

  // Word-size entries: find the dimension from which modular always wins.
  std::size_t word_crossover = max_n_word + 1;
  for (std::size_t n = 3; n <= max_n_word; ++n) {
    const Mat m = testmat::RandomIntMatrix(&rng, n, n, -999, 999);
    Point p;
    p.label = std::to_string(n) + "/word";
    p.ms_a = TimeMs([&] { InverseExact(m); }, reps);
    p.ms_b = TimeMs(
        [&] {
          ModularOptions options;
          TryModularInverse(m, options);
        },
        reps);
    if (p.ms_b < p.ms_a) {
      word_crossover = std::min(word_crossover, n);
    } else {
      word_crossover = max_n_word + 1;  // Must win from here on out.
    }
    sweep.points.push_back(std::move(p));
  }

  // >= 32-bit entries: find the minimum dimension where modular wins.
  std::size_t big_crossover = max_n_big + 1;
  for (std::size_t n = 3; n <= max_n_big; ++n) {
    const Mat m = testmat::RandomBigMatrix(&rng, n, n, 2);  // 64-bit entries.
    Point p;
    p.label = std::to_string(n) + "/big";
    p.ms_a = TimeMs([&] { InverseExact(m); }, reps);
    p.ms_b = TimeMs(
        [&] {
          ModularOptions options;
          TryModularInverse(m, options);
        },
        reps);
    if (p.ms_b < p.ms_a) {
      big_crossover = std::min(big_crossover, n);
    } else {
      big_crossover = max_n_big + 1;
    }
    sweep.points.push_back(std::move(p));
  }

  // Fall back to the stock constants when no crossover showed inside the
  // sweep (keep a sane min <= always ordering either way).
  *always_dim = word_crossover <= max_n_word ? word_crossover
                                             : TuningProfile{}.inverse_modular_always_dim;
  *min_dim = big_crossover <= max_n_big ? big_crossover
                                        : TuningProfile{}.inverse_modular_min_dim;
  *min_dim = std::min(*min_dim, *always_dim);
  std::ostringstream decision;
  decision << "inverse_modular_min_dim=" << *min_dim
           << " inverse_modular_always_dim=" << *always_dim;
  sweep.decision = decision.str();
  return sweep;
}

/// Dixon-vs-CRT inverse crossover on dense 256-bit-entry matrices.
Sweep SweepDixon(Mode mode, std::size_t* dixon_min_dim) {
  const int reps = mode == Mode::kDryRun ? 1 : 2;
  std::vector<std::size_t> sizes;
  if (mode == Mode::kDryRun) {
    sizes = {8, 12};
  } else if (mode == Mode::kFull) {
    sizes = {8, 12, 16, 24, 32, 40};
  } else {
    sizes = {8, 12, 16, 24};
  }
  Sweep sweep;
  sweep.name = "dixon_vs_crt";
  sweep.columns = "n, crt_ms, dixon_ms";
  Rng rng(202);
  std::size_t crossover = 0;
  bool dixon_ahead_tail = false;
  for (std::size_t n : sizes) {
    const Mat m = testmat::RandomBigMatrix(&rng, n, n, 8);  // 256-bit.
    Point p;
    p.label = std::to_string(n);
    p.ms_a = TimeMs(
        [&] {
          ModularOptions options;
          options.dixon_min_dim = std::numeric_limits<std::size_t>::max();
          TryModularInverse(m, options);
        },
        reps);
    p.ms_b = TimeMs(
        [&] {
          ModularOptions options;
          options.dixon_min_dim = 1;
          TryModularInverse(m, options);
        },
        reps);
    if (p.ms_b < p.ms_a) {
      if (!dixon_ahead_tail) crossover = n;
      dixon_ahead_tail = true;
    } else {
      dixon_ahead_tail = false;
    }
    sweep.points.push_back(std::move(p));
  }
  // Dixon must be ahead from the crossover through the end of the sweep;
  // otherwise retain the stock default (CRT ahead everywhere measured).
  *dixon_min_dim =
      dixon_ahead_tail && crossover != 0 ? crossover
                                         : TuningProfile{}.dixon_min_dim;
  std::ostringstream decision;
  decision << "dixon_min_dim=" << *dixon_min_dim
           << (dixon_ahead_tail ? " (measured crossover)"
                                : " (no crossover in sweep; default retained)");
  sweep.decision = decision.str();
  return sweep;
}

/// Shared hom workload for the order-search / domain-threshold sweeps: a
/// mix of small fast-path pairs and mid-size domain-core pairs.
struct HomWorkload {
  std::vector<std::pair<Structure, Structure>> small;
  std::vector<std::pair<Structure, Structure>> medium;
};

HomWorkload MakeHomWorkload(Mode mode) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Rng rng(303);
  HomWorkload w;
  const int small_pairs = mode == Mode::kDryRun ? 4 : 16;
  const int medium_pairs = mode == Mode::kDryRun ? 2 : 6;
  for (int i = 0; i < small_pairs; ++i) {
    w.small.emplace_back(
        RandomConnectedStructure(schema, 2 + rng.Below(2), &rng, 2, 3),
        RandomStructure(schema, 3 + rng.Below(3), &rng, 2, 3));
  }
  for (int i = 0; i < medium_pairs; ++i) {
    w.medium.emplace_back(
        RandomConnectedStructure(schema, 4 + rng.Below(2), &rng, 3, 4),
        RandomStructure(schema, 8 + rng.Below(5), &rng, 2, 5));
  }
  return w;
}

double RunHomWorkload(const HomWorkload& w, const DpOptions& options) {
  for (const auto& [from, to] : w.small) CountHoms(from, to, options);
  for (const auto& [from, to] : w.medium) CountHoms(from, to, options);
  return 0.0;
}

Sweep SweepOrderSearch(Mode mode, const HomWorkload& w,
                       std::size_t* order_search_max_atoms) {
  const int reps = mode == Mode::kDryRun ? 1 : 3;
  std::vector<std::size_t> candidates =
      mode == Mode::kFull ? std::vector<std::size_t>{0, 8, 12, 16}
                          : std::vector<std::size_t>{0, 12};
  Sweep sweep;
  sweep.name = "order_search_max_atoms";
  sweep.columns = "max_atoms, workload_ms";
  double best_ms = std::numeric_limits<double>::infinity();
  for (std::size_t c : candidates) {
    DpOptions options;
    options.order_search_max_atoms = c;
    Point p;
    p.label = std::to_string(c);
    p.ms_a = TimeMs([&] { RunHomWorkload(w, options); }, reps);
    if (p.ms_a < best_ms) {
      best_ms = p.ms_a;
      *order_search_max_atoms = c;
    }
    sweep.points.push_back(std::move(p));
  }
  sweep.decision =
      "order_search_max_atoms=" + std::to_string(*order_search_max_atoms);
  return sweep;
}

Sweep SweepDomainMinWork(Mode mode, const HomWorkload& w,
                         std::uint64_t* domain_min_work) {
  const int reps = mode == Mode::kDryRun ? 1 : 3;
  const std::vector<std::uint64_t> candidates = {0, 1u << 10, 1u << 12,
                                                 1u << 14};
  Sweep sweep;
  sweep.name = "domain_min_work";
  sweep.columns = "min_work, workload_ms";
  double best_ms = std::numeric_limits<double>::infinity();
  for (std::uint64_t c : candidates) {
    DpOptions options;
    options.domain_min_work = static_cast<double>(c);
    Point p;
    p.label = std::to_string(c);
    p.ms_a = TimeMs([&] { RunHomWorkload(w, options); }, reps);
    if (p.ms_a < best_ms) {
      best_ms = p.ms_a;
      *domain_min_work = c;
    }
    sweep.points.push_back(std::move(p));
  }
  sweep.decision = "domain_min_work=" + std::to_string(*domain_min_work);
  return sweep;
}

/// Thread-pool width: wall time of the two pool-heavy kernels (the
/// many-prime modular RREF fold and a split hom count) at every power-of-2
/// width up to the hardware, plus the hardware width itself.
Sweep SweepThreadWidth(Mode mode, unsigned hw_cpus, std::size_t* num_threads,
                       std::size_t* chunks_per_lane) {
  const int reps = mode == Mode::kDryRun ? 1 : 2;
  std::vector<std::size_t> widths;
  for (std::size_t w = 1; w < hw_cpus; w *= 2) widths.push_back(w);
  widths.push_back(hw_cpus);

  Rng rng(404);
  const std::size_t n = mode == Mode::kDryRun ? 10 : 16;
  const Mat rank_deficient = testmat::RandomBigLowRankMatrix(&rng, n, 4, 8);
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  const Structure from =
      RandomConnectedStructure(schema, 5, &rng, 3, 4);
  const Structure to = RandomStructure(schema, 12, &rng, 2, 5);

  Sweep sweep;
  sweep.name = "thread_width";
  sweep.columns = "width, modular_rref_ms, hom_split_ms";
  double best_ms = std::numeric_limits<double>::infinity();
  std::size_t best_width = 1;
  for (std::size_t width : widths) {
    SetGlobalThreadPoolSize(width);
    Point p;
    p.label = std::to_string(width);
    p.ms_a = TimeMs(
        [&] {
          ModularOptions options;
          options.num_threads = width;
          TryModularRref(rank_deficient, options);
        },
        reps);
    p.ms_b = TimeMs(
        [&] {
          DpOptions options;
          options.num_threads = width;
          options.parallel_split_min_work = 0;
          CountHoms(from, to, options);
        },
        reps);
    if (p.ms_a + p.ms_b < best_ms) {
      best_ms = p.ms_a + p.ms_b;
      best_width = width;
    }
    sweep.points.push_back(std::move(p));
  }
  // Restore the default pool before anything else runs.
  SetGlobalThreadPoolSize(0);
  // Full hardware width is spelled "auto" so a profile moved between
  // machines of the same family keeps scaling.
  *num_threads = best_width == hw_cpus ? 0 : best_width;

  // Split chunking only matters with real lanes: sweep oversubscription at
  // the chosen width, else retain the default.
  *chunks_per_lane = TuningProfile{}.parallel_split_chunks_per_lane;
  if (hw_cpus > 1) {
    double best_chunk_ms = std::numeric_limits<double>::infinity();
    for (std::size_t c : {1u, 2u, 4u}) {
      DpOptions options;
      options.parallel_split_min_work = 0;
      options.parallel_split_chunks_per_lane = c;
      const double ms = TimeMs([&] { CountHoms(from, to, options); }, reps);
      Point p;
      p.label = "chunks=" + std::to_string(c);
      p.ms_a = ms;
      sweep.points.push_back(std::move(p));
      if (ms < best_chunk_ms) {
        best_chunk_ms = ms;
        *chunks_per_lane = c;
      }
    }
  }
  std::ostringstream decision;
  decision << "num_threads=" << *num_threads << " (best width " << best_width
           << " of " << hw_cpus << " hw), parallel_split_chunks_per_lane="
           << *chunks_per_lane;
  sweep.decision = decision.str();
  return sweep;
}

// --- Output ----------------------------------------------------------------

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  out.flush();
  return out.good();
}

std::string BuildReportJson(const Fingerprint& fp, Mode mode,
                            const std::vector<Sweep>& sweeps,
                            const TuningProfile& chosen) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"bagdet_tune\",\n";
  out << "  \"mode\": \""
      << (mode == Mode::kDryRun ? "dry-run"
                                : (mode == Mode::kFull ? "full" : "default"))
      << "\",\n";
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }
  out << "  \"timestamp\": \"" << stamp << "\",\n";
  out << "  \"fingerprint\": {\"slug\": \"" << JsonEscape(fp.Slug())
      << "\", \"host\": \"" << JsonEscape(fp.host) << "\", \"machine\": \""
      << JsonEscape(fp.machine) << "\", \"cpus\": " << fp.cpus
      << ", \"word_bits\": " << fp.word_bits << "},\n";
  out << "  \"sweeps\": [\n";
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    const Sweep& sweep = sweeps[s];
    out << "    {\"name\": \"" << JsonEscape(sweep.name) << "\", \"columns\": \""
        << JsonEscape(sweep.columns) << "\", \"decision\": \""
        << JsonEscape(sweep.decision) << "\", \"points\": [";
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      const Point& p = sweep.points[i];
      out << (i == 0 ? "" : ", ") << "{\"label\": \"" << JsonEscape(p.label)
          << "\", \"a_ms\": " << p.ms_a;
      if (p.ms_b >= 0) out << ", \"b_ms\": " << p.ms_b;
      out << "}";
    }
    out << "]}" << (s + 1 == sweeps.size() ? "" : ",") << "\n";
  }
  out << "  ],\n";
  out << "  \"profile\": {\n";
  std::istringstream profile_lines(SerializeTuningProfile(chosen));
  std::string line;
  std::vector<std::pair<std::string, std::string>> kv;
  while (std::getline(profile_lines, line)) {
    const std::size_t eq = line.find(" = ");
    if (eq != std::string::npos) {
      kv.emplace_back(line.substr(0, eq), line.substr(eq + 3));
    }
  }
  for (std::size_t i = 0; i < kv.size(); ++i) {
    out << "    \"" << kv[i].first << "\": " << kv[i].second
        << (i + 1 == kv.size() ? "" : ",") << "\n";
  }
  out << "  }\n";
  out << "}\n";
  return out.str();
}

int Run(int argc, char** argv) {
  Mode mode = Mode::kDefault;
  std::string out_path = "tuning_profile.txt";
  std::string report_path = "tuning_report.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bagdet_tune: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dry-run") {
      mode = Mode::kDryRun;
    } else if (arg == "--full") {
      mode = Mode::kFull;
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg == "--report") {
      report_path = value("--report");
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bagdet_tune [--dry-run | --full] [--out <profile>]"
                   " [--report <json>]\n";
      return 0;
    } else {
      std::cerr << "bagdet_tune: unknown argument " << arg << "\n";
      return 2;
    }
  }

  const Fingerprint fp = MachineFingerprint();
  std::cerr << "bagdet_tune: calibrating on " << fp.Slug() << " ("
            << (mode == Mode::kDryRun
                    ? "dry-run"
                    : (mode == Mode::kFull ? "full" : "default"))
            << " sweep)\n";

  TuningProfile chosen;
  std::vector<Sweep> sweeps;
  sweeps.push_back(SweepInverseGate(mode, &chosen.inverse_modular_min_dim,
                                    &chosen.inverse_modular_always_dim));
  std::cerr << "  " << sweeps.back().decision << "\n";
  sweeps.push_back(SweepDixon(mode, &chosen.dixon_min_dim));
  std::cerr << "  " << sweeps.back().decision << "\n";
  const HomWorkload workload = MakeHomWorkload(mode);
  sweeps.push_back(
      SweepOrderSearch(mode, workload, &chosen.order_search_max_atoms));
  std::cerr << "  " << sweeps.back().decision << "\n";
  sweeps.push_back(SweepDomainMinWork(mode, workload, &chosen.domain_min_work));
  std::cerr << "  " << sweeps.back().decision << "\n";
  sweeps.push_back(SweepThreadWidth(mode, fp.cpus, &chosen.num_threads,
                                    &chosen.parallel_split_chunks_per_lane));
  std::cerr << "  " << sweeps.back().decision << "\n";

  if (std::optional<TuningError> error = ValidateTuningProfile(chosen)) {
    // A sweep can only produce this through a bug; refuse to emit garbage.
    std::cerr << "bagdet_tune: swept profile invalid: " << error->ToString()
              << "\n";
    return 1;
  }

  std::ostringstream profile_text;
  profile_text << "# bagdet tuning profile\n"
               << "# generated by bagdet_tune on " << fp.Slug() << " ("
               << fp.cpus << " cpus)\n"
               << "# load via BAGDET_TUNING_PROFILE=<this file>\n"
               << SerializeTuningProfile(chosen);
  if (!WriteFile(out_path, profile_text.str())) {
    std::cerr << "bagdet_tune: cannot write profile to " << out_path << "\n";
    return 1;
  }
  if (!WriteFile(report_path, BuildReportJson(fp, mode, sweeps, chosen))) {
    std::cerr << "bagdet_tune: cannot write report to " << report_path << "\n";
    return 1;
  }
  std::cerr << "bagdet_tune: wrote " << out_path << " and " << report_path
            << "\n";
  return 0;
}

}  // namespace
}  // namespace bagdet

int main(int argc, char** argv) { return bagdet::Run(argc, argv); }
